(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md's experiment index) and then runs Bechamel
   micro-benchmarks of the core algorithms.

   Usage:
     dune exec bench/main.exe             # full reproduction (~minutes)
     dune exec bench/main.exe -- --quick  # reduced sweeps
     dune exec bench/main.exe -- fig7     # a single figure
     dune exec bench/main.exe -- --jobs 4 # domain-pool size
     dune exec bench/main.exe -- --json out.json

   Timing of every sweep (jobs, wall seconds, scenarios/s where
   applicable) plus one per-phase wall-clock record is written as a
   JSON object {"schema_version": N, "records": [...]}, BENCH_PR10.json
   by default; all records go through the typed emitter in
   bench/emit.ml. The "portfolio" section races the parallel strategy
   portfolio against a sequential replay of the same member list on the
   Fig. 7 instances and records the quality-vs-time envelope: one
   portfolio-envelope record per race (both wall clocks, the speedup,
   the match-or-beat quality verdict), one portfolio-member record per
   configuration and one portfolio-curve record per incumbent
   improvement. The "symbolic" section cross-checks the symbolic
   scenario-family validator against the explicit packed validator
   (identical verdicts, wall clocks for both) and records the k >= 6
   instances only the symbolic backend can cover within their corpus
   budget tiers. The "cache" section compares a tabu-driven strategy run
   with and without the memoized design-evaluation cache (Evalcache)
   and records the hit rate; the "telemetry" section measures the
   overhead of span/counter recording on the same search; the "sched"
   section sweeps conditional scheduling (vertices x k x jobs) against
   the reference scheduler and checks byte-identical tables; the
   "corpus" section runs the pinned benchmark corpus (smoke+standard in
   quick mode, everything otherwise), gates it against
   corpus/manifest.json and records one per-instance timing; the
   "events" section measures the event-stream emission overhead the
   same way the telemetry section does and records the quality-vs-time
   convergence curve of the instrumented search. With "--trace FILE"
   the whole harness runs with telemetry enabled and writes a Chrome
   trace-event JSON file at the end; with "--events FILE" it runs with
   the live event stream enabled and writes NDJSON there; with
   "--trajectory FILE" the corpus section appends one cross-commit
   trajectory entry per instance (commit id from --commit, else
   FTES_COMMIT/GITHUB_SHA, else "unknown").
*)

module E = Ftes_core.Experiments
module Chart = Ftes_util.Chart
module Par = Ftes_util.Par
module Telemetry = Ftes_util.Telemetry
module Events = Ftes_util.Events

let quick = Array.exists (fun a -> a = "--quick") Sys.argv

(* Value of "--flag V" in argv, or default. *)
let flag_value name default parse =
  let v = ref default in
  Array.iteri
    (fun i a ->
      if a = name && i + 1 < Array.length Sys.argv then
        v := parse Sys.argv.(i + 1))
    Sys.argv;
  !v

let jobs =
  flag_value "--jobs" (Par.default_jobs ()) (fun s ->
      match int_of_string_opt s with
      | Some j when j >= 1 -> j
      | Some _ | None ->
          Printf.eprintf "bench: --jobs expects a positive integer, got %S\n"
            s;
          exit 2)
let json_path = flag_value "--json" "BENCH_PR10.json" Fun.id
let trace_path = flag_value "--trace" None (fun s -> Some s)
let events_path = flag_value "--events" None (fun s -> Some s)
let trajectory_arg = flag_value "--trajectory" None (fun s -> Some s)
let commit_arg = flag_value "--commit" None (fun s -> Some s)

let selected =
  let wanted =
    Array.to_list Sys.argv
    |> List.filter (fun a ->
           a = "ablation" || a = "validation" || a = "cache"
           || a = "telemetry" || a = "sched" || a = "corpus"
           || a = "symbolic" || a = "events" || a = "portfolio"
           || (String.length a > 3 && String.sub a 0 3 = "fig"))
  in
  fun name -> wanted = [] || List.mem name wanted

(* ------------------------------------------------------------------ *)
(* JSON timing records                                                 *)
(* ------------------------------------------------------------------ *)

(* Every record in the output file goes through bench/emit.ml's typed
   field representation so the record shapes (sweep timing, phase
   timing, comparison records, convergence points) stay structurally
   consistent; the same module buffers and flushes the cross-commit
   trajectory entries the corpus section produces. *)
open Emit

let record_json = Emit.record
let record_phase ~name ~wall_s = Emit.record_phase ~name ~jobs ~wall_s

(* Run one top-level phase of the harness and record its wall clock. *)
let timed_phase name f =
  let t0 = Unix.gettimeofday () in
  f ();
  record_phase ~name ~wall_s:(Unix.gettimeofday () -. t0)

(* ------------------------------------------------------------------ *)
(* Live event stream (--events FILE)                                   *)
(* ------------------------------------------------------------------ *)

(* With --events the whole harness runs with the event stream enabled,
   writing NDJSON to FILE. The events-overhead section below suspends
   the file sink (and toggles the stream) while it measures, so the
   recorded overhead covers emission plus an in-process sink, never
   disk I/O. *)
let events_oc = Option.map open_out events_path
let events_sink_id : int option ref = ref None

let suspend_event_stream () =
  Option.iter Events.remove_sink !events_sink_id;
  events_sink_id := None

let resume_event_stream () =
  match events_oc with
  | None -> ()
  | Some oc ->
      if not (Events.enabled ()) then Events.enable ();
      events_sink_id := Some (Events.add_sink (Events.ndjson_sink oc))

let section title =
  Printf.printf "\n============================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "============================================================\n"

let timings rows =
  List.iter (fun (l, v) -> Printf.printf "  %-55s %8.1f ms\n" l v) rows

let run_figures () =
  if selected "fig1" then begin
    section
      "Figure 1 - rollback recovery with checkpointing (C=60, a=10, x=5, u=10)";
    timings (E.fig1 ());
    Printf.printf
      "  paper: the 2-checkpoint 1-fault timeline completes at 130 ms\n"
  end;
  if selected "fig2" then begin
    section "Figure 2 - active replication vs. primary-backup (C=60, a=10)";
    timings (E.fig2 ());
    Printf.printf
      "  paper: replicas run in parallel; primary-backup is slower under a \
       fault\n"
  end;
  if selected "fig4" then begin
    section "Figure 4 - policy assignment cases (C=30, a=u=x=5, k=2)";
    timings (E.fig4 ())
  end;
  if selected "fig5" then begin
    section "Figure 5 - the fault-tolerant conditional process graph (k=2)";
    let f = E.fig5 () in
    Format.printf "%a@." Ftes_ftcpg.Ftcpg.pp_summary f;
    let g = Ftes_ftcpg.Problem.graph (Ftes_ftcpg.Ftcpg.problem f) in
    for pid = 0 to Ftes_app.Graph.process_count g - 1 do
      Printf.printf "  %s: %d copies\n"
        (Ftes_app.Graph.process g pid).Ftes_app.Graph.pname
        (List.length (Ftes_ftcpg.Ftcpg.proc_copies f ~pid))
    done;
    Printf.printf "  paper Fig. 5b: P1 3 copies, P2 6, P3 3 (+P3^S), P4 6\n"
  end;
  if selected "fig6" then begin
    section "Figure 6 - fault-tolerant schedule tables";
    let t = E.fig6 () in
    Format.printf "%a@.@.%a@." Ftes_sched.Table.pp t
      (Ftes_sched.Table.pp_matrix ~max_columns:24)
      t;
    let violations = Ftes_sim.Sim.validate_messages t in
    Printf.printf "fault-injection validation: %s\n"
      (if violations = [] then "OK (all 15 scenarios)"
       else String.concat "; " violations)
  end;
  if selected "fig7" then begin
    section
      "Figure 7 - efficiency of fault-tolerance policy assignment\n\
       (avg % deviation of schedule length from the MXR baseline;\n\
       paper averages: MR 77%, MX 17.6%)";
    let seeds = if quick then 1 else 3 in
    let sizes = if quick then [ 20; 40 ] else [ 20; 40; 60; 80; 100 ] in
    let t0 = Unix.gettimeofday () in
    let s = E.fig7 ~jobs ~seeds_per_point:seeds ~sizes () in
    let wall = Unix.gettimeofday () -. t0 in
    Format.printf "%a@." E.pp_series s;
    print_string
      (Chart.render_chart ~y_label:"avg % deviation" ~x_label:"processes"
         ~xs:s.E.xs ~series:s.E.curves ());
    Printf.printf "(%d seed(s)/point, %d job(s), %.0f s)\n" seeds jobs wall;
    record_timing ~name:"fig7" ~jobs ~wall_s:wall ()
  end;
  if selected "fig8" then begin
    section
      "Figure 8 - efficiency of checkpointing optimization\n\
       (avg % deviation of FTO: global [15] vs per-process local optima [27];\n\
       larger deviation = smaller overhead)";
    let seeds = if quick then 1 else 3 in
    let sizes = if quick then [ 40; 60 ] else [ 40; 60; 80; 100 ] in
    let t0 = Unix.gettimeofday () in
    let s = E.fig8 ~jobs ~seeds_per_point:seeds ~sizes () in
    let wall = Unix.gettimeofday () -. t0 in
    Format.printf "%a@." E.pp_series s;
    print_string
      (Chart.render_chart ~y_label:"avg % deviation" ~x_label:"processes"
         ~xs:s.E.xs ~series:s.E.curves ());
    Printf.printf "(%d seed(s)/point, %d job(s), %.0f s)\n" seeds jobs wall;
    record_timing ~name:"fig8" ~jobs ~wall_s:wall ()
  end

let run_ablations () =
  section
    "Ablation - transparency/performance trade-off (paper, Sec. 3.3)\n\
     (relative to the fully non-transparent schedule of the same instance)";
  let seeds = if quick then 2 else 5 in
  let s = E.transparency_tradeoff ~jobs ~seeds () in
  Format.printf "%a@." E.pp_series s;
  print_string
    (Chart.render_chart ~y_label:"% of non-transparent"
       ~x_label:"frozen fraction (%)" ~xs:s.E.xs ~series:s.E.curves ());
  section
    "Ablation - soft/hard utility vs. fault hypothesis ([17])\n\
     (guaranteed = worst case under k faults; bound = all soft maxima)";
  let s = E.soft_utility_vs_k ~jobs ~seeds () in
  Format.printf "%a@." E.pp_series s;
  print_string
    (Chart.render_chart ~y_label:"% of utility bound"
       ~x_label:"tolerated faults k" ~xs:s.E.xs ~series:s.E.curves ())

(* ------------------------------------------------------------------ *)
(* Validation scaling: exhaustive fault injection across domains       *)
(* ------------------------------------------------------------------ *)

let run_validation_scaling () =
  section
    "Validation scaling - exhaustive fault-injection validation\n\
     (packed scenario arena sharded into coarse ranges across the\n\
     domain pool; the merged violation list is byte-identical to the\n\
     sequential run and to the retained explicit-list validator)";
  (* Instances are sized so a single packed jobs=1 pass takes tens of
     milliseconds — small enough for CI, large enough that sharding
     across real cores has work to amortize the fork/join over. *)
  let processes, k = if quick then (10, 4) else (12, 5) in
  let p =
    Ftes_workload.Gen.problem ~k
      { Ftes_workload.Gen.default with processes; nodes = 2; seed = 11 }
  in
  let table = Ftes_sched.Conditional.schedule (Ftes_ftcpg.Ftcpg.build p) in
  let scenarios = Ftes_ftcpg.Ftcpg.scenario_count table.Ftes_sched.Table.ftcpg in
  let cores = Par.default_jobs () in
  Printf.printf
    "instance: %d processes, 2 nodes, k=%d, %d fault scenarios, %d core(s)\n"
    processes k scenarios cores;
  let digest vs =
    Digest.to_hex
      (Digest.string
         (String.concat "\n" (List.map Ftes_sim.Violation.to_string vs)))
  in
  (* The pre-packing explicit validator is the correctness oracle: every
     jobs point below must reproduce its violation list bit for bit. *)
  let t0 = Unix.gettimeofday () in
  let reference = Ftes_sim.Sim.validate_reference ~jobs table in
  let wall_ref = Unix.gettimeofday () -. t0 in
  let ref_digest = digest reference in
  let ref_rate = float_of_int scenarios /. Float.max wall_ref 1e-9 in
  Printf.printf
    "  reference %8.4f s  %10.0f scenarios/s  (explicit list path, %d \
     violations)\n"
    wall_ref ref_rate (List.length reference);
  record_json
    [
      ("name", JStr "validate-reference");
      ("processes", JInt processes);
      ("k", JInt k);
      ("scenarios", JInt scenarios);
      ("cores", JInt cores);
      ("jobs", JInt jobs);
      ("wall_s", JFloat wall_ref);
      ("scenarios_per_s", JRate ref_rate);
    ];
  let time_once j =
    let t0 = Unix.gettimeofday () in
    let vs = Ftes_sim.Sim.validate ~jobs:j table in
    (vs, Unix.gettimeofday () -. t0)
  in
  (* The packed validator clears small instances in well under a
     millisecond; calibrate a repetition count off a jobs=1 warmup so
     every timed point aggregates ~0.25 s of work and the recorded
     rates are not single-sample noise. *)
  let _, warm = time_once 1 in
  let reps = max 1 (min 1000 (int_of_float (Float.ceil (0.25 /. Float.max warm 1e-6)))) in
  let time_reps j =
    let vs, w0 = time_once j in
    let wall = ref w0 in
    for _ = 2 to reps do
      let _, w = time_once j in
      wall := !wall +. w
    done;
    (vs, !wall /. float_of_int reps)
  in
  let job_counts = List.sort_uniq compare ([ 1; 2; 4 ] @ [ jobs ]) in
  (* Every jobs point is recorded with its throughput in both quick and
     full tiers — the scaling curve must always be reconstructible from
     the JSON alone (the CI gate asserts on it). *)
  let baseline = ref None in
  List.iter
    (fun j ->
      let vs, wall = time_reps j in
      let rate = float_of_int scenarios /. Float.max wall 1e-9 in
      let identical = digest vs = ref_digest in
      let speedup =
        match !baseline with
        | None ->
            baseline := Some wall;
            1.0
        | Some base -> base /. Float.max wall 1e-9
      in
      record_json
        [
          ("name", JStr "validate-exhaustive");
          ("processes", JInt processes);
          ("k", JInt k);
          ("scenarios", JInt scenarios);
          ("cores", JInt cores);
          ("jobs", JInt j);
          ("reps", JInt reps);
          ("wall_s", JFloat wall);
          ("scenarios_per_s", JRate rate);
          ("speedup_vs_jobs1", JFloat speedup);
          ("identical", JBool identical);
        ];
      Printf.printf
        "  jobs=%-3d %8.4f s  %10.0f scenarios/s  speedup %.2fx  identical: \
         %b  (%d reps)\n"
        j wall rate speedup identical reps)
    job_counts

(* ------------------------------------------------------------------ *)
(* Scheduler scaling: reference vs incremental/parallel conditional    *)
(* scheduling                                                          *)
(* ------------------------------------------------------------------ *)

let run_sched_bench () =
  section
    "Scheduler scaling - conditional scheduling of the FT-CPG\n\
     (reference full-rescan scheduler vs the incremental scheduler with\n\
     ready-set selection, memoized placements and copy-on-write\n\
     timelines; jobs > 1 additionally fans independent fault/no-fault\n\
     subtrees out on the domain pool. Tables are byte-identical in\n\
     every configuration)";
  let configs =
    (* (processes, k, seed): scenario-tree size grows with both axes. *)
    if quick then [ (8, 2, 17); (10, 3, 17) ]
    else [ (8, 2, 17); (10, 3, 17); (12, 4, 17); (14, 4, 17) ]
  in
  let digest t =
    Digest.to_hex (Digest.string (Format.asprintf "%a" Ftes_sched.Table.pp t))
  in
  (* jobs > 1 can only pay off with real cores behind the pool; print
     the count so single-core runs (where the fan-out is pure overhead)
     read correctly. *)
  Printf.printf "  domain pool: %d core(s) available\n" (Par.default_jobs ());
  let job_counts = List.sort_uniq compare ([ 1; 2; 4 ] @ [ jobs ]) in
  List.iter
    (fun (processes, k, seed) ->
      let p =
        Ftes_workload.Gen.problem ~k
          { Ftes_workload.Gen.default with processes; nodes = 2; seed }
      in
      let f = Ftes_ftcpg.Ftcpg.build p in
      let vertices = Array.length (Ftes_ftcpg.Ftcpg.vertices f) in
      let t0 = Unix.gettimeofday () in
      let ref_table = Ftes_sched.Conditional.schedule_reference f in
      let wall_ref = Unix.gettimeofday () -. t0 in
      let ref_digest = digest ref_table in
      let tracks = List.length ref_table.Ftes_sched.Table.tracks in
      Printf.printf
        "  instance: %d processes, 2 nodes, k=%d -> %d vertices, %d tracks\n"
        processes k vertices tracks;
      Printf.printf "  reference: %8.3f s\n" wall_ref;
      List.iter
        (fun j ->
          let t0 = Unix.gettimeofday () in
          let table = Ftes_sched.Conditional.schedule ~jobs:j f in
          let wall = Unix.gettimeofday () -. t0 in
          let identical = digest table = ref_digest in
          let speedup = wall_ref /. Float.max wall 1e-9 in
          Printf.printf
            "  jobs=%-3d %8.3f s  speedup %.2fx  identical: %b\n" j wall
            speedup identical;
          record_json
            [
              ("name", JStr "sched-scaling");
              ("processes", JInt processes);
              ("k", JInt k);
              ("vertices", JInt vertices);
              ("tracks", JInt tracks);
              ("jobs", JInt j);
              ("wall_s", JFloat wall);
              ("wall_s_reference", JFloat wall_ref);
              ("speedup", JFloat speedup);
              ("identical", JBool identical);
            ])
        job_counts)
    configs

(* ------------------------------------------------------------------ *)
(* Evaluation-cache sweep: cached vs uncached tabu-driven synthesis    *)
(* ------------------------------------------------------------------ *)

let run_cache_bench () =
  section
    "Evaluation cache - Fig. 7 strategy sweep with and without Evalcache\n\
     (nft baseline + MXR + MR + SFX + MX on one instance, sharing one\n\
     cache, as Experiments.fig7 does per seed: MXR's mapping phase\n\
     replays the MX search and SFX replays the baseline search, so the\n\
     cache serves those re-runs from memory; identical outcomes by\n\
     construction)";
  let processes = if quick then 15 else 30 in
  let app, arch, wcet =
    Ftes_workload.Gen.instance
      { Ftes_workload.Gen.default with processes; nodes = 3; seed = 23 }
  in
  let inputs = { Ftes_optim.Strategy.app; arch; wcet; k = 3 } in
  let opts =
    {
      Ftes_optim.Tabu.default_options with
      Ftes_optim.Tabu.iterations = (if quick then 30 else 80);
      jobs;
    }
  in
  let names =
    Ftes_optim.Strategy.[ MXR; MR; SFX; MX ]
  in
  let time_run cache =
    let opts = { opts with Ftes_optim.Tabu.cache } in
    let t0 = Unix.gettimeofday () in
    let nft = Ftes_optim.Strategy.nft_length ~opts inputs in
    let outcomes =
      List.map (fun n -> Ftes_optim.Strategy.run ~opts ~nft inputs n) names
    in
    (outcomes, Unix.gettimeofday () -. t0)
  in
  let uncached, wall_uncached = time_run None in
  let cache = Ftes_optim.Evalcache.create () in
  let cached, wall_cached = time_run (Some cache) in
  let stats = Ftes_optim.Evalcache.stats cache in
  let identical =
    List.for_all2
      (fun (u : Ftes_optim.Strategy.outcome) (c : Ftes_optim.Strategy.outcome) ->
        u.Ftes_optim.Strategy.length = c.Ftes_optim.Strategy.length
        && Ftes_optim.Evalcache.signature u.Ftes_optim.Strategy.problem
           = Ftes_optim.Evalcache.signature c.Ftes_optim.Strategy.problem)
      uncached cached
  in
  Printf.printf
    "  instance: %d processes, 3 nodes, k=3; %d tabu iterations, %d job(s)\n"
    processes opts.Ftes_optim.Tabu.iterations jobs;
  Printf.printf "  uncached: %8.3f s\n" wall_uncached;
  Printf.printf "  cached:   %8.3f s  speedup %.2fx  identical: %b\n"
    wall_cached
    (wall_uncached /. Float.max wall_cached 1e-9)
    identical;
  Format.printf "  cache:    %a@." Ftes_optim.Evalcache.pp_stats stats;
  record_json
    [
      ("name", JStr "tabu-cache");
      ("jobs", JInt jobs);
      ("wall_s_uncached", JFloat wall_uncached);
      ("wall_s_cached", JFloat wall_cached);
      ("speedup", JFloat (wall_uncached /. Float.max wall_cached 1e-9));
      ("cache_hit_rate", JFloat (Ftes_optim.Evalcache.hit_rate stats));
      ("cache_lookups", JInt stats.Ftes_optim.Evalcache.lookups);
      ("identical", JBool identical);
    ]

(* ------------------------------------------------------------------ *)
(* Telemetry overhead: same search with recording off and on           *)
(* ------------------------------------------------------------------ *)

let run_telemetry_bench () =
  section
    "Telemetry overhead - nft baseline + MXR with span/counter recording\n\
     off and then on (same seed; trajectories are bit-identical because\n\
     telemetry only observes the search, it never steers it)";
  let processes = if quick then 12 else 25 in
  let app, arch, wcet =
    Ftes_workload.Gen.instance
      { Ftes_workload.Gen.default with processes; nodes = 3; seed = 29 }
  in
  let inputs = { Ftes_optim.Strategy.app; arch; wcet; k = 2 } in
  (* Sequential on purpose: with a domain pool the wall clock of a
     sub-second search swings with host scheduling far more than with
     the recording overhead being measured. The parallel path is
     covered by the trajectory-identity tests across jobs values. *)
  let opts =
    {
      Ftes_optim.Tabu.default_options with
      Ftes_optim.Tabu.iterations = (if quick then 25 else 60);
      jobs = 1;
    }
  in
  let run_once () =
    let nft = Ftes_optim.Strategy.nft_length ~opts inputs in
    Ftes_optim.Strategy.run ~opts ~nft inputs Ftes_optim.Strategy.MXR
  in
  (* Paired samples after a warmup run: the searches take fractions of
     a second, so isolated samples are dominated by scheduler and
     allocator noise rather than by the recording overhead. Each
     off/on pair runs back to back under the same machine conditions,
     and the reported overhead is the median of the per-pair ratios,
     which cancels the common-mode noise a min- or mean-of-samples
     comparison is defenceless against. *)
  let reps = 7 in
  let sample () =
    let t0 = Unix.gettimeofday () in
    let o = run_once () in
    (o, Unix.gettimeofday () -. t0)
  in
  let was_enabled = Telemetry.enabled () in
  Telemetry.disable ();
  ignore (run_once ());
  let pairs =
    List.init reps (fun _ ->
        Telemetry.disable ();
        let off, w_off = sample () in
        Telemetry.enable ();
        let on, w_on = sample () in
        ((off, w_off), (on, w_on)))
  in
  if not was_enabled then Telemetry.disable ();
  let median = Ftes_util.Stats.percentile 50. in
  let wall_off = median (List.map (fun ((_, w), _) -> w) pairs) in
  let wall_on = median (List.map (fun (_, (_, w)) -> w) pairs) in
  let ratio = median (List.map (fun ((_, o), (_, n)) -> n /. o) pairs) in
  let (off, _), (on, _) = List.hd pairs in
  let identical =
    off.Ftes_optim.Strategy.length = on.Ftes_optim.Strategy.length
    && Ftes_optim.Evalcache.signature off.Ftes_optim.Strategy.problem
       = Ftes_optim.Evalcache.signature on.Ftes_optim.Strategy.problem
  in
  let overhead_pct = (ratio -. 1.) *. 100. in
  Printf.printf
    "  instance: %d processes, 3 nodes, k=2; %d tabu iterations, %d job(s)\n"
    processes opts.Ftes_optim.Tabu.iterations opts.Ftes_optim.Tabu.jobs;
  Printf.printf "  telemetry off: %8.3f s\n" wall_off;
  Printf.printf "  telemetry on:  %8.3f s  overhead %+.2f%%  identical: %b\n"
    wall_on overhead_pct identical;
  record_json
    [
      ("name", JStr "telemetry-overhead");
      ("jobs", JInt opts.Ftes_optim.Tabu.jobs);
      ("wall_s_off", JFloat wall_off);
      ("wall_s_on", JFloat wall_on);
      ("overhead_pct", JFloat overhead_pct);
      ("identical", JBool identical);
    ]

(* ------------------------------------------------------------------ *)
(* Event-stream overhead and the anytime convergence curve             *)
(* ------------------------------------------------------------------ *)

let run_events_bench () =
  section
    "Event stream overhead - nft baseline + MXR with event emission\n\
     off and then on (same seed; trajectories are bit-identical because\n\
     events observe the search, they never steer it). The instrumented\n\
     run also yields the anytime quality-vs-time curve: one\n\
     convergence-point record per incumbent improvement";
  (* Quiesce the domain pool left by earlier sections: even parked
     domains take part in every stop-the-world minor collection, which
     roughly doubles the wall time of this sequential search and drowns
     the effect being measured. The pool re-arms on the next fan-out. *)
  Ftes_util.Par.shutdown ();
  let processes = if quick then 18 else 25 in
  let app, arch, wcet =
    Ftes_workload.Gen.instance
      { Ftes_workload.Gen.default with processes; nodes = 3; seed = 29 }
  in
  let inputs = { Ftes_optim.Strategy.app; arch; wcet; k = 2 } in
  (* Sequential for the same reason as the telemetry section: sub-second
     searches on a domain pool swing with host scheduling far more than
     with the emission overhead being measured. Parallel delivery is
     covered by the trajectory-identity tests across jobs values. *)
  let opts =
    {
      Ftes_optim.Tabu.default_options with
      (* Sized so a single run takes tens of milliseconds even in quick
         mode — the per-rep noise floor on a busy 1-core runner is a
         couple of milliseconds, which must stay well inside the
         asserted bound. *)
      Ftes_optim.Tabu.iterations = 120;
      jobs = 1;
    }
  in
  let run_once () =
    let nft = Ftes_optim.Strategy.nft_length ~opts inputs in
    Ftes_optim.Strategy.run ~opts ~nft inputs Ftes_optim.Strategy.MXR
  in
  (* The "on" configuration is emission plus one in-process sink that
     counts events and captures incumbents for the convergence curve —
     the shape a live progress consumer has, without measuring disk
     I/O (the --events file sink is suspended for the duration). *)
  let incumbents = ref [] in
  let events_seen = ref 0 in
  let capture (e : Events.event) =
    incr events_seen;
    match e.Events.payload with
    | Events.Incumbent { source; cost; evals; wall_s } ->
        incumbents := (source, cost, evals, wall_s) :: !incumbents
    | _ -> ()
  in
  suspend_event_stream ();
  let stream_was_on = Events.enabled () in
  let sample () =
    let t0 = Unix.gettimeofday () in
    let o = run_once () in
    (o, Unix.gettimeofday () -. t0)
  in
  Events.disable ();
  ignore (run_once ());
  (* Paired off/on samples; the ratio of per-side minima is taken
     below, which is robust to one-sided scheduler noise. *)
  let reps = 7 in
  let dropped = ref 0 in
  let pairs =
    List.init reps (fun _ ->
        Events.disable ();
        let off = sample () in
        incumbents := [];
        events_seen := 0;
        Events.enable ();
        let sink = Events.add_sink capture in
        let on = sample () in
        Events.drain ();
        dropped := Events.dropped ();
        Events.remove_sink sink;
        (off, on))
  in
  Events.disable ();
  if stream_was_on then resume_event_stream ();
  (* Scheduler noise only ever adds time, so the minimum over reps is
     the most stable estimate of each side's true cost — medians of
     paired ratios swing +/-10% on a loaded single-core runner, which
     is wider than the bound being asserted. *)
  let minimum = List.fold_left min infinity in
  let wall_off = minimum (List.map (fun ((_, w), _) -> w) pairs) in
  let wall_on = minimum (List.map (fun (_, (_, w)) -> w) pairs) in
  let ratio = wall_on /. wall_off in
  let (off, _), (on, _) = List.hd pairs in
  let identical =
    off.Ftes_optim.Strategy.length = on.Ftes_optim.Strategy.length
    && Ftes_optim.Evalcache.signature off.Ftes_optim.Strategy.problem
       = Ftes_optim.Evalcache.signature on.Ftes_optim.Strategy.problem
  in
  let overhead_pct = (ratio -. 1.) *. 100. in
  (* The bound CI asserts on: well above the ~2% the stream actually
     costs, well below anything that would signal emission on the off
     path or a sink doing per-event work it should not. *)
  let bound_pct = 5.0 in
  Printf.printf
    "  instance: %d processes, 3 nodes, k=2; %d tabu iterations, %d job(s)\n"
    processes opts.Ftes_optim.Tabu.iterations opts.Ftes_optim.Tabu.jobs;
  Printf.printf "  events off: %8.3f s\n" wall_off;
  Printf.printf
    "  events on:  %8.3f s  overhead %+.2f%% (bound %.1f%%)  identical: %b\n"
    wall_on overhead_pct bound_pct identical;
  Printf.printf "  %d event(s)/run delivered, %d dropped\n" !events_seen
    !dropped;
  record_json
    [
      ("name", JStr "events-overhead");
      ("jobs", JInt opts.Ftes_optim.Tabu.jobs);
      ("wall_s_off", JFloat wall_off);
      ("wall_s_on", JFloat wall_on);
      ("overhead_pct", JFloat overhead_pct);
      ("bound_pct", JFloat bound_pct);
      ("events_per_run", JInt !events_seen);
      ("dropped", JInt !dropped);
      ("identical", JBool identical);
    ];
  let curve = List.rev !incumbents in
  List.iter
    (fun (source, cost, evals, wall_s) ->
      record_json
        [
          ("name", JStr "convergence-point");
          ("source", JStr source);
          ("cost", JFloat cost);
          ("evals", JInt evals);
          ("wall_s", JFloat wall_s);
        ])
    curve;
  Printf.printf "  convergence curve: %d incumbent point(s) recorded\n"
    (List.length curve)

(* ------------------------------------------------------------------ *)
(* Portfolio: parallel strategy race vs its own sequential replay      *)
(* ------------------------------------------------------------------ *)

let run_portfolio_bench () =
  section
    "Portfolio - parallel strategy race vs sequential replay\n\
     (the same member list — MXR/MX/SFX/MR + the diagnostics-driven LNS\n\
     engine, diversified over seeds/tenures/neighborhoods — run once\n\
     sequentially and once racing on the domain pool with a shared\n\
     Evalcache; deterministic mode, so the lengths must agree and the\n\
     speedup isolates pure wall-clock parallelism)";
  let cores = Par.default_jobs () in
  let seeds = if quick then 1 else 2 in
  let sizes = if quick then [ 20 ] else [ 20; 40 ] in
  let tabu =
    {
      Ftes_optim.Tabu.default_options with
      Ftes_optim.Tabu.iterations = (if quick then 25 else 40);
    }
  in
  (* Five members race, so --jobs 2 caps the theoretical speedup at
     ceil(5/2)=3 slots = 1.67x even on a big machine; widen the race to
     the core count (up to the member count) so the recorded speedup
     reflects the hardware, not the harness default. *)
  let race_jobs = max jobs (min cores 5) in
  let races =
    E.fig7_portfolio ~jobs:race_jobs ~seeds_per_point:seeds ~sizes ~tabu ()
  in
  Printf.printf "  %d race(s), %d job(s), %d core(s)\n" (List.length races)
    race_jobs cores;
  List.iter
    (fun (r : E.race) ->
      Format.printf "  %a@." E.pp_race r;
      let match_or_beat = r.E.portfolio_length <= r.E.best_single +. 1e-6 in
      record_json
        [
          ("name", JStr "portfolio-envelope");
          ("size", JInt r.E.size);
          ("seed", JInt r.E.seed);
          ("jobs", JInt race_jobs);
          ("cores", JInt cores);
          ("seq_wall_s", JFloat r.E.seq_wall_s);
          ("port_wall_s", JFloat r.E.port_wall_s);
          ("speedup", JFloat r.E.speedup);
          ("best_single_len", JFloat r.E.best_single);
          ("best_single", JStr r.E.best_single_name);
          ("portfolio_len", JFloat r.E.portfolio_length);
          ("winner", JStr r.E.winner);
          ("match_or_beat", JBool match_or_beat);
        ];
      List.iter
        (fun (label, length, wall_s) ->
          record_json
            [
              ("name", JStr "portfolio-member");
              ("size", JInt r.E.size);
              ("seed", JInt r.E.seed);
              ("member", JStr label);
              ("length", JFloat length);
              ("wall_s", JFloat wall_s);
            ])
        r.E.members;
      List.iter
        (fun (e : Ftes_optim.Incumbent.entry) ->
          record_json
            [
              ("name", JStr "portfolio-curve");
              ("size", JInt r.E.size);
              ("seed", JInt r.E.seed);
              ("member", JStr e.Ftes_optim.Incumbent.member);
              ("cost", JFloat e.Ftes_optim.Incumbent.cost);
              ("wall_s", JFloat e.Ftes_optim.Incumbent.wall_s);
            ])
        r.E.curve)
    races

(* ------------------------------------------------------------------ *)
(* Symbolic validation: cube replay vs the explicit enumeration        *)
(* ------------------------------------------------------------------ *)

let run_symbolic_bench () =
  let module Reg = Ftes_corpus.Registry in
  let module CI = Ftes_corpus.Instance in
  let module Runner = Ftes_corpus.Runner in
  section
    "Symbolic validation - scenario-family cubes vs explicit enumeration\n\
     (every cross-checked instance must produce the identical verdict\n\
     through both backends; at k >= 6 the explicit arena exceeds any\n\
     budget tier and the symbolic backend provides the only\n\
     full-coverage verdict)";
  let table_of_problem p =
    let f = Ftes_ftcpg.Ftcpg.build p in
    match Ftes_sched.Statictable.schedule f with
    | t -> t
    | exception Ftes_sched.Statictable.Not_transparent _ ->
        Ftes_sched.Conditional.schedule f
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let symbolic_instances =
    List.filter (fun i -> i.CI.check = CI.Symbolic) (Reg.all ())
  in
  (* Cross-checks: the symbolic corpus instances whose explicit arena is
     feasible, plus a deliberately violating table so both verdicts are
     exercised. *)
  let cross_tables =
    List.map
      (fun inst -> (inst.CI.id, table_of_problem (CI.problem inst)))
      (List.filter (fun i -> i.CI.k <= 3) symbolic_instances)
    @
    let p =
      Ftes_workload.Gen.problem ~k:3
        { Ftes_workload.Gen.default with processes = 9; nodes = 2; seed = 41 }
    in
    let t = Ftes_sched.Conditional.schedule (Ftes_ftcpg.Ftcpg.build p) in
    (* Shrink the deadline below the worst-case track so validation has
       genuine deadline violations to find through both backends. *)
    let bad_deadline = 0.8 *. Ftes_sched.Table.no_fault_length t in
    let pb = Ftes_ftcpg.Ftcpg.problem t.Ftes_sched.Table.ftcpg in
    let tight =
      Ftes_ftcpg.Problem.make
        ~app:
          (Ftes_app.App.with_deadline pb.Ftes_ftcpg.Problem.app bad_deadline)
        ~arch:pb.Ftes_ftcpg.Problem.arch ~wcet:pb.Ftes_ftcpg.Problem.wcet ~k:3
        ~policies:pb.Ftes_ftcpg.Problem.policies
        ~mapping:pb.Ftes_ftcpg.Problem.mapping
    in
    [
      ( "tight-9x2-k3",
        Ftes_sched.Conditional.schedule (Ftes_ftcpg.Ftcpg.build tight) );
    ]
  in
  List.iter
    (fun (id, table) ->
      let scenarios =
        Ftes_ftcpg.Ftcpg.scenario_count table.Ftes_sched.Table.ftcpg
      in
      let explicit, wall_explicit =
        time (fun () -> Ftes_sim.Sim.validate ~jobs:1 table)
      in
      let sym, wall_symbolic =
        time (fun () -> Ftes_sim.Sim.validate ~jobs:1 ~mode:`Symbolic table)
      in
      let _, stats = Ftes_sim.Symbolic.check_stats ~jobs:1 table in
      let identical = (explicit = []) = (sym = []) in
      Printf.printf
        "  %-28s %7d scenarios  explicit %8.4f s  symbolic %8.4f s  %4d \
         cube(s)  verdicts identical: %b\n"
        id scenarios wall_explicit wall_symbolic stats.Ftes_sim.Symbolic.cubes
        identical;
      record_json
        [
          ("name", JStr "symbolic-crosscheck");
          ("id", JStr id);
          ("scenarios", JInt scenarios);
          ("violations_explicit", JInt (List.length explicit));
          ("violations_symbolic", JInt (List.length sym));
          ("wall_s_explicit", JFloat wall_explicit);
          ("wall_s_symbolic", JFloat wall_symbolic);
          ("cubes", JInt stats.Ftes_sim.Symbolic.cubes);
          ("splits", JInt stats.Ftes_sim.Symbolic.splits);
          ("identical", JBool identical);
        ])
    cross_tables;
  (* The k >= 6 records: full-coverage symbolic verdicts inside the
     instance's corpus budget tier, where the explicit arena would need
     orders of magnitude more scenario replays than the budget allows. *)
  List.iter
    (fun inst ->
      if inst.CI.k >= 6 then begin
        let p = CI.problem inst in
        let table = table_of_problem p in
        let count =
          match
            Ftes_sim.Symbolic.frozen_scenario_count
              table.Ftes_sched.Table.ftcpg
          with
          | Some c -> c
          | None -> nan
        in
        let vs, wall =
          time (fun () -> Ftes_sim.Sim.validate ~jobs:1 ~mode:`Symbolic table)
        in
        let _, stats = Ftes_sim.Symbolic.check_stats ~jobs:1 table in
        let budget_s = Runner.tier_budget_ms inst.CI.tier /. 1000. in
        let within_budget = wall <= budget_s in
        (* The throughput the explicit backend would need to clear the
           same scenario family inside the budget — compare with the
           measured validate-exhaustive rates (thousands to millions of
           scenarios/s on far smaller tables). *)
        let rate_needed = count /. Float.max budget_s 1e-9 in
        Printf.printf
          "  %-28s %.3e scenarios  symbolic %8.4f s (budget %g s)  %4d \
           cube(s)  clean: %b\n"
          inst.CI.id count wall budget_s stats.Ftes_sim.Symbolic.cubes
          (vs = []);
        Printf.printf
          "    explicit would need %.3e scenarios/s to meet the same budget\n"
          rate_needed;
        record_json
          [
            ("name", JStr "symbolic-large-k");
            ("id", JStr inst.CI.id);
            ("k", JInt inst.CI.k);
            ("scenario_count", JFloat count);
            ("wall_s_symbolic", JFloat wall);
            ("budget_s", JFloat budget_s);
            ("within_budget", JBool within_budget);
            ("explicit_rate_needed_per_s", JRate rate_needed);
            ("cubes", JInt stats.Ftes_sim.Symbolic.cubes);
            ("clean", JBool (vs = []));
          ]
      end)
    symbolic_instances

(* ------------------------------------------------------------------ *)
(* Corpus: the pinned regression corpus through the parallel runner    *)
(* ------------------------------------------------------------------ *)

let run_corpus_bench () =
  let module Corpus = Ftes_corpus.Registry in
  let module Runner = Ftes_corpus.Runner in
  let module Manifest = Ftes_corpus.Manifest in
  let module CI = Ftes_corpus.Instance in
  section
    "Corpus - pinned benchmark corpus on the domain pool\n\
     (every instance re-evaluated and gated against corpus/manifest.json:\n\
     digests, schedule lengths, verdicts and budget tiers must match)";
  let tiers = if quick then Some [ CI.Smoke; CI.Standard ] else None in
  let instances = Corpus.select ?tiers () in
  let complete = tiers = None in
  Printf.printf "  instances: %d of %d (%s), %d job(s)\n"
    (List.length instances)
    (List.length (Corpus.all ()))
    (if quick then "smoke+standard" else "full corpus")
    jobs;
  let t0 = Unix.gettimeofday () in
  let outcomes = Runner.run ~jobs instances in
  let wall = Unix.gettimeofday () -. t0 in
  List.iter
    (fun (o : Runner.outcome) ->
      record_json
        [
          ("name", JStr "corpus");
          ("id", JStr o.Runner.instance.CI.id);
          ("tier", JStr (CI.tier_to_string o.Runner.instance.CI.tier));
          ("kind", JStr (CI.check_kind o.Runner.instance.CI.check));
          ("wall_s", JFloat (o.Runner.wall_ms /. 1000.));
          ("ok", JBool o.Runner.ok);
        ];
      Emit.trajectory_point ~id:o.Runner.instance.CI.id ~ok:o.Runner.ok
        ~length:o.Runner.length ~wall_ms:o.Runner.wall_ms)
    outcomes;
  let failed = List.filter (fun o -> not o.Runner.ok) outcomes in
  Printf.printf "  evaluated %d instance(s) in %.1f s (%d failed)\n"
    (List.length outcomes) wall (List.length failed);
  let manifest_path = "corpus/manifest.json" in
  let regressions =
    if Sys.file_exists manifest_path then
      match Manifest.load manifest_path with
      | Ok manifest ->
          let failures = Runner.verify ~complete ~manifest outcomes in
          List.iter
            (fun (f : Runner.failure) ->
              Printf.printf "  ! %s: %s\n" f.Runner.id f.Runner.reason)
            failures;
          Printf.printf "  manifest gate: %s\n"
            (if failures = [] then "OK" else "REGRESSIONS");
          List.length failures
      | Error msg ->
          Printf.printf "  ! manifest unreadable: %s\n" msg;
          1
    else begin
      (* Running from a cwd without the checked-in manifest (e.g. a raw
         _build invocation): still benchmark, just skip the gate. *)
      Printf.printf "  manifest gate: skipped (%s not found)\n" manifest_path;
      0
    end
  in
  record_json
    [
      ("name", JStr "corpus-summary");
      ("jobs", JInt jobs);
      ("instances", JInt (List.length outcomes));
      ("failed", JInt (List.length failed));
      ("regressions", JInt regressions);
      ("wall_s", JFloat wall);
    ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the core algorithms                    *)
(* ------------------------------------------------------------------ *)

let micro_tests () =
  let open Bechamel in
  let fig5_problem = Ftes_ftcpg.Ftcpg.problem (E.fig5 ()) in
  let fig5_ftcpg = Ftes_ftcpg.Ftcpg.build fig5_problem in
  let random40 =
    Ftes_workload.Gen.problem ~k:3
      { Ftes_workload.Gen.default with processes = 40; nodes = 4; seed = 7 }
  in
  let guard =
    Option.get
      (Ftes_ftcpg.Cond.of_literals
         (List.init 6 (fun i ->
              { Ftes_ftcpg.Cond.cond = i; fault = i mod 2 = 0 })))
  in
  Test.make_grouped ~name:"ftes"
    [
      Test.make ~name:"ftcpg-build(fig5)"
        (Staged.stage (fun () -> Ftes_ftcpg.Ftcpg.build fig5_problem));
      Test.make ~name:"conditional-schedule(fig5)"
        (Staged.stage (fun () -> Ftes_sched.Conditional.schedule fig5_ftcpg));
      Test.make ~name:"scenarios(fig5)"
        (Staged.stage (fun () -> Ftes_ftcpg.Ftcpg.scenarios fig5_ftcpg));
      Test.make ~name:"slack-evaluate(40 procs)"
        (Staged.stage (fun () -> Ftes_sched.Slack.evaluate random40));
      Test.make ~name:"checkpoint-local-optimum"
        (Staged.stage (fun () ->
             Ftes_optim.Checkpoint.local_optimum ~c:60. Ftes_app.Overheads.fig1
               ~k:4));
      Test.make ~name:"guard-conjoin"
        (Staged.stage (fun () -> Ftes_ftcpg.Cond.conjoin guard guard));
      Test.make ~name:"workload-generate(20 procs)"
        (Staged.stage (fun () ->
             Ftes_workload.Gen.instance
               { Ftes_workload.Gen.default with processes = 20; seed = 3 }));
    ]

let run_micro () =
  let open Bechamel in
  section "Micro-benchmarks (Bechamel, one Test.make per core algorithm)";
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second (if quick then 0.25 else 0.5))
      ~kde:None ()
  in
  let raw = Benchmark.all cfg instances (micro_tests ()) in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (v :: _) -> v
        | Some [] | None -> nan
      in
      rows := (name, ns) :: !rows)
    results;
  List.iter
    (fun (name, ns) ->
      if Float.is_nan ns then Printf.printf "  %-40s (no estimate)\n" name
      else if ns > 1e6 then
        Printf.printf "  %-40s %10.3f ms/run\n" name (ns /. 1e6)
      else if ns > 1e3 then
        Printf.printf "  %-40s %10.3f us/run\n" name (ns /. 1e3)
      else Printf.printf "  %-40s %10.0f ns/run\n" name ns)
    (List.sort compare !rows)

let () =
  Printf.printf
    "ftes benchmark harness - reproduction of 'Synthesis of Fault-Tolerant \
     Embedded Systems' (DATE 2008)\n";
  Printf.printf "mode: %s, jobs: %d\n" (if quick then "quick" else "full")
    jobs;
  if trace_path <> None then Telemetry.enable ();
  Option.iter
    (fun path -> Emit.configure_trajectory ~path ~commit:commit_arg)
    trajectory_arg;
  resume_event_stream ();
  timed_phase "figures" run_figures;
  if selected "ablation" then timed_phase "ablations" run_ablations;
  if selected "validation" then
    timed_phase "validation-scaling" run_validation_scaling;
  if selected "sched" then timed_phase "sched-scaling" run_sched_bench;
  if selected "cache" then timed_phase "cache" run_cache_bench;
  if selected "telemetry" then timed_phase "telemetry" run_telemetry_bench;
  if selected "events" then timed_phase "events" run_events_bench;
  if selected "portfolio" then timed_phase "portfolio" run_portfolio_bench;
  if selected "symbolic" then timed_phase "symbolic" run_symbolic_bench;
  if selected "corpus" then timed_phase "corpus" run_corpus_bench;
  timed_phase "micro" run_micro;
  Emit.write json_path;
  Emit.flush_trajectory ();
  (match trace_path with
  | Some file ->
      Telemetry.write_chrome_trace file;
      Printf.printf "wrote %s\n" file
  | None -> ());
  (match (events_oc, events_path) with
  | Some oc, Some file ->
      Events.drain ();
      let d = Events.dropped () in
      if d > 0 then
        Printf.printf "event stream: %d event(s) dropped (ring full)\n" d;
      Events.disable ();
      close_out oc;
      Printf.printf "wrote %s\n" file
  | _ -> ());
  Par.shutdown ();
  section "Done"
